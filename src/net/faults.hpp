// Scriptable fault injection for the mobile<->edge link. The field study
// (Section VI-C2, Fig. 17) runs edgeIS over real WiFi/LTE where messages
// are lost, duplicated, delayed past their successors, or blacked out for
// whole seconds. A FaultScript describes those behaviours as timed
// windows; a FaultInjector applies them to individual messages using the
// experiment's seeded Rng, so every faulty run is bit-for-bit
// reproducible.
#pragma once

#include <vector>

#include "runtime/rng.hpp"

namespace edgeis::net {

enum class FaultMode {
  kDrop,       // per-message Bernoulli loss
  kDuplicate,  // message delivered twice (second copy lags)
  kReorder,    // message delayed so later sends overtake it
  kOutage,     // blackout: every message in the window is lost
  kThrottle,   // bandwidth collapse: transmit time is stretched, not lost
};

const char* fault_mode_name(FaultMode mode);

/// One timed fault interval: active for messages entering the link at
/// start_ms <= t < end_ms.
struct FaultWindow {
  double start_ms = 0.0;
  double end_ms = 0.0;
  FaultMode mode = FaultMode::kOutage;
  /// Per-message trigger probability while the window is active. kOutage
  /// conventionally uses 1.0 (a total blackout).
  double probability = 1.0;
  /// Mean extra delay applied by kReorder (actual delay is uniform in
  /// [0.5, 1.5] of this, matching the congestion-tail convention).
  double reorder_delay_ms = 80.0;
  /// kThrottle: multiplier applied to the message's transmit time while
  /// the window is active (a bandwidth collapse — messages arrive late,
  /// not never). Overlapping throttle windows compound.
  double throttle_factor = 4.0;

  [[nodiscard]] bool active(double now_ms) const {
    return now_ms >= start_ms && now_ms < end_ms;
  }
};

/// An ordered list of fault windows; windows may overlap, in which case a
/// message is subjected to each active window in list order.
struct FaultScript {
  std::vector<FaultWindow> windows;

  [[nodiscard]] bool empty() const { return windows.empty(); }

  FaultScript& add(FaultWindow w) {
    windows.push_back(w);
    return *this;
  }

  /// No faults: the idealized link of the non-field experiments.
  static FaultScript none() { return {}; }

  /// Total blackout over [start_ms, end_ms).
  static FaultScript outage(double start_ms, double end_ms);

  /// Stationary random loss at `drop_probability` over [0, until_ms).
  static FaultScript lossy(double drop_probability, double until_ms = 1e18);

  /// Bandwidth collapse: every message entering the link in
  /// [start_ms, end_ms) has its transmit time multiplied by `factor`.
  static FaultScript throttle(double start_ms, double end_ms, double factor);
};

/// Independent uplink/downlink scripts, so asymmetric behaviour (an
/// uplink-limited LTE cell, a throttled downlink) is expressible. A bare
/// FaultScript converts implicitly to the symmetric case — both
/// directions get the same windows, applied through each direction's own
/// seeded Rng stream.
struct DuplexFaultScript {
  FaultScript uplink;
  FaultScript downlink;

  DuplexFaultScript() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): symmetric scripts are
  // the common case and predate the split; every `cfg.faults = script`
  // call site reads better without a wrapper.
  DuplexFaultScript(FaultScript symmetric)
      : uplink(symmetric), downlink(std::move(symmetric)) {}

  static DuplexFaultScript asymmetric(FaultScript up, FaultScript down) {
    DuplexFaultScript s;
    s.uplink = std::move(up);
    s.downlink = std::move(down);
    return s;
  }

  /// Append `w` to both directions (symmetric-script composition).
  DuplexFaultScript& add(FaultWindow w) {
    uplink.add(w);
    downlink.add(w);
    return *this;
  }

  [[nodiscard]] bool empty() const {
    return uplink.empty() && downlink.empty();
  }
};

/// Counters of faults actually applied (link-level ground truth; the
/// mobile side can only infer these through timeouts).
struct FaultStats {
  int messages = 0;
  int dropped = 0;         // kDrop losses
  int outage_dropped = 0;  // kOutage losses
  int duplicated = 0;
  int reordered = 0;
  int throttled = 0;  // messages that crossed a bandwidth-collapse window

  [[nodiscard]] int total_lost() const { return dropped + outage_dropped; }
};

/// The fate of one message entering the link.
struct FaultDecision {
  bool drop = false;
  bool duplicate = false;
  double extra_delay_ms = 0.0;      // reorder delay on the primary copy
  double duplicate_delay_ms = 0.0;  // additional lag of the duplicate copy
  double latency_scale = 1.0;       // kThrottle multiplier on transmit time
};

/// Applies a FaultScript message by message. Owns its own Rng stream so a
/// fault-free script consumes no randomness and leaves fault-free runs
/// byte-identical to runs without an injector.
class FaultInjector {
 public:
  FaultInjector() : rng_(0) {}
  FaultInjector(FaultScript script, rt::Rng rng)
      : script_(std::move(script)), rng_(rng) {}

  /// Decide the fate of one message entering the link at `now_ms`.
  FaultDecision on_message(double now_ms);

  /// True while any kOutage window covers `now_ms`.
  [[nodiscard]] bool in_outage(double now_ms) const;

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const FaultScript& script() const { return script_; }

 private:
  FaultScript script_;
  rt::Rng rng_;
  FaultStats stats_;
};

}  // namespace edgeis::net
