#include "net/send_queue.hpp"

#include <algorithm>
#include <cmath>

namespace edgeis::net {

SendOutcome SendQueue::enqueue(double now_ms, std::size_t bytes,
                               FaultInjector& faults) {
  // Callers advance monotonically; anything delivered by now is no longer
  // in flight and need not be tracked. The tracker is a min-heap on
  // arrival time, drained from the front: each element is pushed and
  // popped exactly once, so a long run stays O(log n) per enqueue instead
  // of the full O(n) scan a per-call erase_if costs.
  while (!deliveries_.empty() && deliveries_.front() <= now_ms) {
    std::pop_heap(deliveries_.begin(), deliveries_.end(),
                  std::greater<>());
    deliveries_.pop_back();
  }

  SendOutcome out;
  SendSlot& slot = out.slot;
  slot.enter_ms = std::max(now_ms, busy_until_ms_);
  slot.queue_wait_ms = slot.enter_ms - now_ms;
  slot.serialize_ms = static_cast<double>(bytes) * 8.0 /
                      (link_.bandwidth_mbps * 1000.0);
  // Same shape as transmit_ms(): serialization + propagation + half-normal
  // jitter, with a congestion-probability tail.
  double propagation = link_.base_latency_ms +
                       std::abs(rng_.normal(0.0, link_.jitter_ms));
  if (rng_.chance(link_.congestion_probability)) {
    propagation += rng_.uniform(0.5, 1.5) * link_.congestion_penalty_ms;
  }
  slot.transit_ms = slot.serialize_ms + propagation;

  out.fate = faults.on_message(slot.enter_ms);
  // A bandwidth collapse stretches the time the message spends on the
  // wire, which keeps the serializer occupied for the stretched extent:
  // everything queued behind it inherits the delay.
  busy_until_ms_ =
      slot.enter_ms + slot.serialize_ms * out.fate.latency_scale;
  ++messages_;
  bytes_ += bytes;

  out.deliver_ms = slot.enter_ms + slot.transit_ms * out.fate.latency_scale +
                   out.fate.extra_delay_ms;
  if (!out.fate.drop && out.fate.duplicate) {
    // The duplicate is its own transmission: independent propagation
    // sample, no inherited reorder delay (the copies must not arrive in
    // lockstep). It does not re-occupy our serializer — duplication is
    // injected below the queue, at the link layer.
    double dup_prop = link_.base_latency_ms +
                      std::abs(rng_.normal(0.0, link_.jitter_ms));
    if (rng_.chance(link_.congestion_probability)) {
      dup_prop += rng_.uniform(0.5, 1.5) * link_.congestion_penalty_ms;
    }
    out.duplicate_transit_ms = slot.serialize_ms + dup_prop;
    out.duplicate_deliver_ms =
        slot.enter_ms + out.duplicate_transit_ms * out.fate.latency_scale +
        out.fate.duplicate_delay_ms;
    deliveries_.push_back(out.duplicate_deliver_ms);
    std::push_heap(deliveries_.begin(), deliveries_.end(), std::greater<>());
  }
  deliveries_.push_back(out.deliver_ms);
  std::push_heap(deliveries_.begin(), deliveries_.end(), std::greater<>());
  return out;
}

int SendQueue::in_flight(double now_ms) const {
  int n = 0;
  for (double d : deliveries_) {
    if (d > now_ms) ++n;
  }
  return n;
}

}  // namespace edgeis::net
