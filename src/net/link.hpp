// Network link models for the mobile<->edge channel: WiFi 2.4 GHz,
// WiFi 5 GHz and LTE profiles with bandwidth, base latency, jitter and a
// congestion-probability tail — the knobs the paper varies in Section
// VI-C2 and the field study.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/faults.hpp"
#include "runtime/rng.hpp"
#include "runtime/trace.hpp"

namespace edgeis::net {

struct LinkProfile {
  std::string name;
  double bandwidth_mbps = 100.0;  // effective goodput
  double base_latency_ms = 3.0;   // one-way
  double jitter_ms = 1.0;         // half-normal added per message
  double congestion_probability = 0.02;  // chance of a stalled burst
  double congestion_penalty_ms = 40.0;
};

LinkProfile wifi_5ghz();
LinkProfile wifi_24ghz();
LinkProfile lte();

/// Simulated one-way message delivery time for `bytes` over the link.
double transmit_ms(const LinkProfile& link, std::size_t bytes,
                   edgeis::rt::Rng& rng);

/// Emit the per-message link-transfer span(s) for one send: an X span on
/// the uplink/downlink track covering the message's time on the wire,
/// annotated with its size and the injected fault (dropped / duplicated /
/// reordered / throttled). `transit_ms` is the nominal (pre-fault)
/// transmit time; the span applies the fate's stretch and delay exactly as
/// the delivery path does. A dropped message still gets a span (its
/// nominal extent) so outages are visible as annotated gaps, and a
/// duplicated one gets a second span for the lagging copy. No-op when
/// `tracer` is null.
///
/// Full-duplex extensions: `queue_wait_ms` > 0 annotates the head-of-line
/// wait the message spent behind the send queue's serializer;
/// `chunk_index` >= 0 marks a streamed response chunk (`chunk_index` of
/// `chunk_count`); `is_resend` marks a missing-instance retransmission.
void trace_transfer(rt::Tracer* tracer, bool uplink, double enter_ms,
                    double transit_ms, std::size_t bytes,
                    const FaultDecision& fate, int request_id, int attempt,
                    double duplicate_transit_ms = 0.0,
                    double queue_wait_ms = 0.0, int chunk_index = -1,
                    int chunk_count = 0, bool is_resend = false);

/// A half-duplex request/response channel with in-order delivery and at
/// most `capacity` requests in flight (the transmission-module thread of
/// Section VI-A sends frames and receives masks asynchronously).
template <typename Payload>
class Channel {
 public:
  struct InFlight {
    double deliver_at_ms;
    Payload payload;
  };

  void send(double now_ms, double latency_ms, Payload payload) {
    queue_.push_back({now_ms + latency_ms, std::move(payload)});
  }

  /// Send through a fault injector: the message may be lost, duplicated,
  /// delayed past later sends, or stretched by a bandwidth-collapse
  /// window (latency_scale). Returns false when the message was lost.
  bool send(double now_ms, double latency_ms, Payload payload,
            FaultInjector& faults) {
    const FaultDecision d = faults.on_message(now_ms);
    if (d.drop) return false;
    const double transit_ms = latency_ms * d.latency_scale + d.extra_delay_ms;
    if (d.duplicate) {
      queue_.push_back({now_ms + transit_ms + d.duplicate_delay_ms, payload});
    }
    queue_.push_back({now_ms + transit_ms, std::move(payload)});
    return true;
  }

  /// Pop the next message delivered by `now_ms`, oldest first. Messages
  /// with equal delivery times come out in send order (FIFO).
  [[nodiscard]] bool try_receive(double now_ms, Payload& out) {
    std::size_t best = queue_.size();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (queue_[i].deliver_at_ms > now_ms) continue;
      // Strict <: the earliest-sent of equal delivery times wins.
      if (best == queue_.size() ||
          queue_[i].deliver_at_ms < queue_[best].deliver_at_ms) {
        best = i;
      }
    }
    if (best == queue_.size()) return false;
    out = std::move(queue_[best].payload);
    queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(best));
    return true;
  }

  [[nodiscard]] std::size_t in_flight() const { return queue_.size(); }

 private:
  std::vector<InFlight> queue_;
};

}  // namespace edgeis::net
