// Full-duplex transmission: one SendQueue per link direction. The paper's
// transmission module (Section VI-A) runs as its own thread, so the radio
// can serialize a keyframe while a liveness ping queues behind it and a
// response streams down the other direction — the half-duplex
// one-outstanding-request model this replaces could not express that.
//
// The queue models the serializer as a single resource: a message admitted
// while an earlier one is still going onto the wire waits head-of-line,
// then transmits with its own propagation sample. Any number of messages
// may be *in flight* (serialized, still propagating) at once; full duplex
// is simply two queues, one per direction, with independent Rng streams.
#pragma once

#include <cstddef>
#include <vector>

#include "net/faults.hpp"
#include "net/link.hpp"

namespace edgeis::net {

/// Scheduling decision for one admitted message, before faults.
struct SendSlot {
  double enter_ms = 0.0;       // serialization start (wire entry)
  double queue_wait_ms = 0.0;  // head-of-line wait before serializing
  double serialize_ms = 0.0;   // bytes-on-wire time at link bandwidth
  double transit_ms = 0.0;     // serialize + propagation + jitter (+tail)
};

/// One admitted message with its fault fate applied: what the receiving
/// side observes. `deliver_ms` values are only meaningful when the
/// corresponding copy exists (`!fate.drop`, `fate.duplicate`).
struct SendOutcome {
  SendSlot slot;
  FaultDecision fate;
  double deliver_ms = 0.0;            // primary copy arrival
  double duplicate_deliver_ms = 0.0;  // lagging copy arrival
  double duplicate_transit_ms = 0.0;  // independent transit of the copy
};

class SendQueue {
 public:
  SendQueue() : rng_(0) {}
  SendQueue(LinkProfile link, rt::Rng rng)
      : link_(std::move(link)), rng_(rng) {}

  /// Admit one message at `now_ms` and decide its fate through `faults`.
  /// Fault windows key off the wire-entry time (after the head-of-line
  /// wait), matching how a throttle window stretches whatever is on the
  /// wire while it is active. A dropped message still occupied the
  /// serializer — it died in flight, not before sending — and a throttle
  /// stretches the serializer occupancy too, so everything queued behind
  /// a collapsed-bandwidth message waits it out.
  SendOutcome enqueue(double now_ms, std::size_t bytes,
                      FaultInjector& faults);

  /// Fault-free admission (clean-link paths and unit tests).
  SendOutcome enqueue(double now_ms, std::size_t bytes) {
    FaultInjector none;
    return enqueue(now_ms, bytes, none);
  }

  /// Serializer-free time: the wire-entry time of the next admission at
  /// or before this instant.
  [[nodiscard]] double busy_until_ms() const { return busy_until_ms_; }
  /// Messages serialized but not yet delivered at `now_ms` (dropped
  /// copies leave the count at their would-have-been arrival).
  [[nodiscard]] int in_flight(double now_ms) const;
  [[nodiscard]] std::size_t messages_sent() const { return messages_; }
  [[nodiscard]] std::size_t bytes_sent() const { return bytes_; }
  [[nodiscard]] const LinkProfile& link() const { return link_; }

 private:
  LinkProfile link_;
  rt::Rng rng_;
  double busy_until_ms_ = 0.0;
  // In-flight arrival times, kept as a min-heap on arrival so enqueue()
  // drains expired entries from the front in O(log n) amortized.
  std::vector<double> deliveries_;
  std::size_t messages_ = 0;
  std::size_t bytes_ = 0;
};

}  // namespace edgeis::net
