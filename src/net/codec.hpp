// Versioned wire codec for the mobile<->edge protocol. Every message type
// registers once through a MessageTraits specialization (type tag + body
// reader/writer + out-of-band payload accounting); Codec derives the
// framing, parsing, and wire-size math from the traits, so adding a
// message type never extends parallel serialize/parse/wire_bytes overload
// sets again. The per-type magics of the v1 protocol are replaced by one
// codec magic + version byte + type tag.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/serialize.hpp"

namespace edgeis::net {

inline constexpr std::uint32_t kCodecMagic = 0xED9EC0DEu;
/// Bumped when any message body changes shape. v2: unified framing +
/// canvas-epoch keyframes + DeltaKeyframeMessage.
inline constexpr std::uint8_t kCodecVersion = 2;

/// Specialized once per wire message:
///   static constexpr std::uint8_t kTag;          // unique type tag
///   static constexpr const char* kName;          // for diagnostics
///   static void write(rt::ByteWriter&, const M&);
///   static M read(rt::ByteReader&);
///   static std::size_t payload_bytes(const M&);  // out-of-band bitstream
template <typename M>
struct MessageTraits;

class Codec {
 public:
  /// Serialized framing + body. Throws nothing; always succeeds.
  template <typename M>
  static std::vector<std::uint8_t> encode(const M& msg) {
    rt::ByteWriter w;
    w.put<std::uint32_t>(kCodecMagic);
    w.put<std::uint8_t>(kCodecVersion);
    w.put<std::uint8_t>(MessageTraits<M>::kTag);
    MessageTraits<M>::write(w, msg);
    return w.take();
  }

  /// Parse a message of known type. Throws rt::DeserializeError on a bad
  /// magic, an unsupported version, a tag mismatch, or a malformed body.
  template <typename M>
  static M decode(std::span<const std::uint8_t> bytes) {
    rt::ByteReader r(bytes);
    if (r.get<std::uint32_t>() != kCodecMagic) {
      throw rt::DeserializeError("bad codec magic");
    }
    const auto version = r.get<std::uint8_t>();
    if (version == 0 || version > kCodecVersion) {
      throw rt::DeserializeError("unsupported codec version");
    }
    if (r.get<std::uint8_t>() != MessageTraits<M>::kTag) {
      throw rt::DeserializeError("message type tag mismatch");
    }
    return MessageTraits<M>::read(r);
  }

  /// Type tag of a framed message without parsing the body.
  static std::uint8_t peek_tag(std::span<const std::uint8_t> bytes) {
    rt::ByteReader r(bytes);
    if (r.get<std::uint32_t>() != kCodecMagic) {
      throw rt::DeserializeError("bad codec magic");
    }
    r.get<std::uint8_t>();  // version
    return r.get<std::uint8_t>();
  }

  /// Bytes this message puts on the link: the serialized framing plus any
  /// out-of-band payload the traits account for (the simulated tile
  /// bitstream of keyframes). Derived from encode() — never a parallel
  /// hand-maintained formula.
  template <typename M>
  static std::size_t wire_bytes(const M& msg) {
    return encode(msg).size() + MessageTraits<M>::payload_bytes(msg);
  }
};

/// One row of the codec's message-type registry (protocol.cpp): every
/// registered type, with a self-check that round-trips a representative
/// sample and verifies the wire-size accounting. Tests iterate this table
/// so a newly registered message is covered without editing the test.
struct MessageTypeInfo {
  std::uint8_t tag = 0;
  const char* name = "";
  /// Encode a representative sample, decode it back, compare for
  /// equality, and assert wire_bytes == encode().size() + payload_bytes.
  bool (*round_trip_ok)() = nullptr;
};

std::span<const MessageTypeInfo> registered_message_types();

}  // namespace edgeis::net
