#include "net/link.hpp"

#include <cmath>

namespace edgeis::net {

LinkProfile wifi_5ghz() {
  LinkProfile p;
  p.name = "wifi-5ghz";
  p.bandwidth_mbps = 160.0;
  p.base_latency_ms = 2.5;
  p.jitter_ms = 1.0;
  p.congestion_probability = 0.01;
  p.congestion_penalty_ms = 25.0;
  return p;
}

LinkProfile wifi_24ghz() {
  LinkProfile p;
  p.name = "wifi-2.4ghz";
  p.bandwidth_mbps = 40.0;
  p.base_latency_ms = 5.0;
  p.jitter_ms = 3.0;
  p.congestion_probability = 0.04;
  p.congestion_penalty_ms = 50.0;
  return p;
}

LinkProfile lte() {
  LinkProfile p;
  p.name = "lte";
  p.bandwidth_mbps = 18.0;   // uplink-limited
  p.base_latency_ms = 28.0;
  p.jitter_ms = 8.0;
  p.congestion_probability = 0.05;
  p.congestion_penalty_ms = 80.0;
  return p;
}

double transmit_ms(const LinkProfile& link, std::size_t bytes,
                   edgeis::rt::Rng& rng) {
  const double serialization_ms =
      static_cast<double>(bytes) * 8.0 / (link.bandwidth_mbps * 1000.0);
  double latency = link.base_latency_ms + serialization_ms +
                   std::abs(rng.normal(0.0, link.jitter_ms));
  if (rng.chance(link.congestion_probability)) {
    latency += rng.uniform(0.5, 1.5) * link.congestion_penalty_ms;
  }
  return latency;
}

}  // namespace edgeis::net
