#include "net/link.hpp"

#include <cmath>

namespace edgeis::net {

LinkProfile wifi_5ghz() {
  LinkProfile p;
  p.name = "wifi-5ghz";
  p.bandwidth_mbps = 160.0;
  p.base_latency_ms = 2.5;
  p.jitter_ms = 1.0;
  p.congestion_probability = 0.01;
  p.congestion_penalty_ms = 25.0;
  return p;
}

LinkProfile wifi_24ghz() {
  LinkProfile p;
  p.name = "wifi-2.4ghz";
  p.bandwidth_mbps = 40.0;
  p.base_latency_ms = 5.0;
  p.jitter_ms = 3.0;
  p.congestion_probability = 0.04;
  p.congestion_penalty_ms = 50.0;
  return p;
}

LinkProfile lte() {
  LinkProfile p;
  p.name = "lte";
  p.bandwidth_mbps = 18.0;   // uplink-limited
  p.base_latency_ms = 28.0;
  p.jitter_ms = 8.0;
  p.congestion_probability = 0.05;
  p.congestion_penalty_ms = 80.0;
  return p;
}

void trace_transfer(rt::Tracer* tracer, bool uplink, double enter_ms,
                    double transit_ms, std::size_t bytes,
                    const FaultDecision& fate, int request_id, int attempt,
                    double duplicate_transit_ms, double queue_wait_ms,
                    int chunk_index, int chunk_count, bool is_resend) {
  if (tracer == nullptr) return;
  const rt::TraceTrack track =
      uplink ? rt::track::kUplink : rt::track::kDownlink;
  const char* name = uplink ? "uplink" : "downlink";
  rt::TraceArgs args;
  args.emplace_back("bytes", bytes);
  args.emplace_back("request", request_id);
  args.emplace_back("attempt", attempt);
  if (queue_wait_ms > 0.0) args.emplace_back("queue_wait_ms", queue_wait_ms);
  if (chunk_index >= 0) {
    args.emplace_back("chunk", chunk_index);
    args.emplace_back("chunks", chunk_count);
  }
  if (is_resend) args.emplace_back("resend", true);
  const char* fault = "none";
  if (fate.drop) fault = "dropped";
  else if (fate.duplicate) fault = "duplicated";
  else if (fate.extra_delay_ms > 0.0) fault = "reordered";
  else if (fate.latency_scale != 1.0) fault = "throttled";
  args.emplace_back("fault", fault);
  if (fate.latency_scale != 1.0) {
    args.emplace_back("latency_scale", fate.latency_scale);
  }
  if (fate.extra_delay_ms > 0.0) {
    args.emplace_back("reorder_delay_ms", fate.extra_delay_ms);
  }
  // A dropped message dies somewhere on the wire: show its nominal extent
  // so blackouts appear as a run of annotated would-have-been transfers.
  const double dur = fate.drop ? transit_ms
                               : transit_ms * fate.latency_scale +
                                     fate.extra_delay_ms;
  tracer->complete(track, name, enter_ms, dur, std::move(args));
  if (!fate.drop && fate.duplicate) {
    rt::TraceArgs dup_args;
    dup_args.emplace_back("bytes", bytes);
    dup_args.emplace_back("request", request_id);
    dup_args.emplace_back("attempt", attempt);
    dup_args.emplace_back("fault", "duplicate-copy");
    tracer->complete(track, name, enter_ms,
                     duplicate_transit_ms * fate.latency_scale +
                         fate.duplicate_delay_ms,
                     std::move(dup_args));
  }
}

double transmit_ms(const LinkProfile& link, std::size_t bytes,
                   edgeis::rt::Rng& rng) {
  const double serialization_ms =
      static_cast<double>(bytes) * 8.0 / (link.bandwidth_mbps * 1000.0);
  double latency = link.base_latency_ms + serialization_ms +
                   std::abs(rng.normal(0.0, link.jitter_ms));
  if (rng.chance(link.congestion_probability)) {
    latency += rng.uniform(0.5, 1.5) * link.congestion_penalty_ms;
  }
  return latency;
}

}  // namespace edgeis::net
