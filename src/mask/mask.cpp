#include "mask/mask.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/arena.hpp"

namespace edgeis::mask {

std::optional<Box> InstanceMask::bounding_box() const {
  Box b{width(), height(), 0, 0};
  bool any = false;
  for (int y = 0; y < height(); ++y) {
    const auto* r = bits_.row(y);
    for (int x = 0; x < width(); ++x) {
      if (!r[x]) continue;
      any = true;
      b.x0 = std::min(b.x0, x);
      b.y0 = std::min(b.y0, y);
      b.x1 = std::max(b.x1, x + 1);
      b.y1 = std::max(b.y1, y + 1);
    }
  }
  if (!any) return std::nullopt;
  return b;
}

double InstanceMask::iou(const InstanceMask& o) const {
  long long inter = 0, uni = 0;
  const int w = std::max(width(), o.width());
  const int h = std::max(height(), o.height());
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const bool a = get(x, y);
      const bool b = o.get(x, y);
      inter += (a && b) ? 1 : 0;
      uni += (a || b) ? 1 : 0;
    }
  }
  return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni) : 0.0;
}

InstanceMask InstanceMask::dilated(int r) const {
  InstanceMask out = *this;
  for (int pass = 0; pass < r; ++pass) {
    InstanceMask next = out;
    for (int y = 0; y < height(); ++y) {
      for (int x = 0; x < width(); ++x) {
        if (out.get(x, y)) continue;
        if (out.get(x - 1, y) || out.get(x + 1, y) || out.get(x, y - 1) ||
            out.get(x, y + 1)) {
          next.set(x, y);
        }
      }
    }
    out = std::move(next);
  }
  return out;
}

InstanceMask InstanceMask::eroded(int r) const {
  InstanceMask out = *this;
  for (int pass = 0; pass < r; ++pass) {
    InstanceMask next = out;
    for (int y = 0; y < height(); ++y) {
      for (int x = 0; x < width(); ++x) {
        if (!out.get(x, y)) continue;
        // Border pixels erode too (treat outside as unset).
        const bool interior = x > 0 && y > 0 && x < width() - 1 &&
                              y < height() - 1 && out.get(x - 1, y) &&
                              out.get(x + 1, y) && out.get(x, y - 1) &&
                              out.get(x, y + 1);
        if (!interior) next.set(x, y, false);
      }
    }
    out = std::move(next);
  }
  return out;
}

InstanceMask InstanceMask::translated(int dx, int dy) const {
  InstanceMask out(width(), height());
  out.class_id = class_id;
  out.instance_id = instance_id;
  for (int y = 0; y < height(); ++y) {
    for (int x = 0; x < width(); ++x) {
      if (get(x, y)) out.set(x + dx, y + dy);
    }
  }
  return out;
}

namespace {

// Moore neighborhood, clockwise starting from W.
constexpr int kMoore[8][2] = {{-1, 0}, {-1, -1}, {0, -1}, {1, -1},
                              {1, 0},  {1, 1},   {0, 1},  {-1, 1}};

Contour trace_boundary(const InstanceMask& m, int sx, int sy) {
  Contour contour;
  contour.push_back({static_cast<double>(sx), static_cast<double>(sy)});

  int cx = sx, cy = sy;
  // Backtrack starts at W of the start pixel (we scan left-to-right, so the
  // pixel to the left of the first foreground pixel is background).
  int backtrack = 0;
  int fx = -1, fy = -1;  // target of the first move

  const std::size_t max_steps =
      static_cast<std::size_t>(m.width()) * static_cast<std::size_t>(m.height()) * 4 + 16;
  for (std::size_t step = 0; step < max_steps; ++step) {
    // Search clockwise from the pixel after the backtrack direction.
    bool found = false;
    int nx = 0, ny = 0, ndir = 0;
    for (int k = 1; k <= 8; ++k) {
      const int dir = (backtrack + k) % 8;
      const int tx = cx + kMoore[dir][0];
      const int ty = cy + kMoore[dir][1];
      if (m.get(tx, ty)) {
        nx = tx;
        ny = ty;
        ndir = dir;
        found = true;
        break;
      }
    }
    if (!found) break;  // isolated pixel

    // Jacob's stopping criterion: the walk is back at the start pixel and
    // about to repeat its first move, so the loop has closed. Stopping on
    // position alone is wrong — a pinched (8-connected) boundary passes
    // through the start pixel more than once before the loop closes.
    if (step == 0) {
      fx = nx;
      fy = ny;
    } else if (cx == sx && cy == sy && nx == fx && ny == fy) {
      contour.pop_back();  // drop the re-pushed start: the loop is closed
      break;
    }

    contour.push_back({static_cast<double>(nx), static_cast<double>(ny)});
    // New backtrack: points from the new pixel at the last background cell
    // the clockwise search examined before finding it. That cell is at
    // (ndir - 1) relative to the OLD pixel; re-expressed relative to the
    // new pixel it is two steps back for cardinal moves but three for
    // diagonal ones — using the cardinal offset for both lets the search
    // restart on a foreground cell and walk cycles that never re-enter
    // the start state.
    backtrack = (ndir % 2 == 0) ? (ndir + 6) % 8 : (ndir + 5) % 8;
    cx = nx;
    cy = ny;
  }
  return contour;
}

}  // namespace

std::vector<Contour> find_contours(const InstanceMask& mask) {
  std::vector<Contour> contours;
  const int w = mask.width();
  const int h = mask.height();
  // Frame-scratch reuse: the visited map is a full-frame buffer that used
  // to be re-heap-allocated on every call (mask transfer runs this per
  // instance per keyframe); the flood-fill stack keeps its capacity
  // across calls the same way.
  rt::ArenaScope scratch;
  auto visited = scratch.alloc_filled<std::uint8_t>(
      static_cast<std::size_t>(w) * static_cast<std::size_t>(h), 0);
  const auto seen = [&](int px, int py) -> std::uint8_t& {
    return visited[static_cast<std::size_t>(py) * static_cast<std::size_t>(w) +
                   static_cast<std::size_t>(px)];
  };
  thread_local std::vector<std::pair<int, int>> stack;

  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      if (!mask.get(x, y) || seen(x, y)) continue;
      const bool is_boundary_start = !mask.get(x - 1, y);
      if (!is_boundary_start) continue;

      Contour c = trace_boundary(mask, x, y);
      // Mark the whole component visited via flood fill so inner starts on
      // the same blob don't retrace.
      stack.assign(1, {x, y});
      while (!stack.empty()) {
        auto [px, py] = stack.back();
        stack.pop_back();
        // mask.get bounds-checks, so out-of-range pushes die here before
        // the visited lookup.
        if (!mask.get(px, py) || seen(px, py)) continue;
        seen(px, py) = 1;
        stack.push_back({px - 1, py});
        stack.push_back({px + 1, py});
        stack.push_back({px, py - 1});
        stack.push_back({px, py + 1});
      }
      if (c.size() >= 3) contours.push_back(std::move(c));
    }
  }
  return contours;
}

InstanceMask rasterize_polygon(const Contour& polygon, int width, int height) {
  InstanceMask out(width, height);
  if (polygon.size() < 3) return out;

  // Even-odd scanline fill.
  for (int y = 0; y < height; ++y) {
    const double fy = static_cast<double>(y) + 0.5;
    std::vector<double> xs;
    const std::size_t n = polygon.size();
    for (std::size_t i = 0; i < n; ++i) {
      const geom::Vec2& a = polygon[i];
      const geom::Vec2& b = polygon[(i + 1) % n];
      if ((a.y <= fy && b.y > fy) || (b.y <= fy && a.y > fy)) {
        const double t = (fy - a.y) / (b.y - a.y);
        xs.push_back(a.x + t * (b.x - a.x));
      }
    }
    std::sort(xs.begin(), xs.end());
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      const int x0 = std::max(0, static_cast<int>(std::ceil(xs[i] - 0.5)));
      const int x1 =
          std::min(width - 1, static_cast<int>(std::floor(xs[i + 1] - 0.5)));
      for (int x = x0; x <= x1; ++x) out.set(x, y);
    }
  }

  return out;
}

InstanceMask mask_from_id_image(const img::IdImage& ids, std::uint16_t id) {
  InstanceMask out(ids.width(), ids.height());
  out.instance_id = id;
  for (int y = 0; y < ids.height(); ++y) {
    for (int x = 0; x < ids.width(); ++x) {
      if (ids.at(x, y) == id) out.set(x, y);
    }
  }
  return out;
}

}  // namespace edgeis::mask
