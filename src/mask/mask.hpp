// Instance-mask representation and pixel-level operations: IoU (Eq. 8),
// surrounding boxes (used by dynamic anchor placement), contour extraction
// (the `findContours` analogue used by mask transfer, Section III-C),
// polygon rasterization (contour -> mask) and simple morphology.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "geometry/vec.hpp"
#include "image/image.hpp"

namespace edgeis::mask {

/// Axis-aligned pixel box, [x0, x1) x [y0, y1).
struct Box {
  int x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  [[nodiscard]] int width() const noexcept { return x1 - x0; }
  [[nodiscard]] int height() const noexcept { return y1 - y0; }
  [[nodiscard]] long long area() const noexcept {
    return static_cast<long long>(std::max(0, width())) * std::max(0, height());
  }
  [[nodiscard]] bool empty() const noexcept { return x1 <= x0 || y1 <= y0; }

  [[nodiscard]] Box intersect(const Box& o) const noexcept {
    return {std::max(x0, o.x0), std::max(y0, o.y0), std::min(x1, o.x1),
            std::min(y1, o.y1)};
  }
  [[nodiscard]] Box unite(const Box& o) const noexcept {
    if (empty()) return o;
    if (o.empty()) return *this;
    return {std::min(x0, o.x0), std::min(y0, o.y0), std::max(x1, o.x1),
            std::max(y1, o.y1)};
  }
  /// Box IoU — the metric RoI pruning scores candidates with (Section IV-B).
  [[nodiscard]] double iou(const Box& o) const noexcept {
    const long long inter = intersect(o).area();
    const long long uni = area() + o.area() - inter;
    return uni > 0 ? static_cast<double>(inter) / static_cast<double>(uni)
                   : 0.0;
  }
  /// Grow by `margin` pixels on all sides, clipped to [0,w)x[0,h).
  [[nodiscard]] Box inflated(int margin, int w, int h) const noexcept {
    return {std::max(0, x0 - margin), std::max(0, y0 - margin),
            std::min(w, x1 + margin), std::min(h, y1 + margin)};
  }
  [[nodiscard]] bool contains(int x, int y) const noexcept {
    return x >= x0 && x < x1 && y >= y0 && y < y1;
  }
  friend bool operator==(const Box&, const Box&) = default;
};

/// Dense binary mask of one object instance, with class and instance ids.
class InstanceMask {
 public:
  InstanceMask() = default;
  InstanceMask(int width, int height) : bits_(width, height, 0) {}

  [[nodiscard]] int width() const noexcept { return bits_.width(); }
  [[nodiscard]] int height() const noexcept { return bits_.height(); }
  [[nodiscard]] bool empty() const noexcept { return bits_.empty(); }

  [[nodiscard]] bool get(int x, int y) const {
    return bits_.contains(x, y) && bits_.at(x, y) != 0;
  }
  void set(int x, int y, bool v = true) {
    if (bits_.contains(x, y)) bits_.at(x, y) = v ? 1 : 0;
  }

  [[nodiscard]] long long pixel_count() const noexcept {
    long long c = 0;
    for (int y = 0; y < height(); ++y) {
      const auto* r = bits_.row(y);
      for (int x = 0; x < width(); ++x) c += r[x] ? 1 : 0;
    }
    return c;
  }

  /// Tight bounding box of set pixels; nullopt for an empty mask.
  [[nodiscard]] std::optional<Box> bounding_box() const;

  /// Pixel-level IoU per Eq. (8) of the paper.
  [[nodiscard]] double iou(const InstanceMask& o) const;

  /// 4-connected morphological dilation/erosion by `r` pixels.
  [[nodiscard]] InstanceMask dilated(int r) const;
  [[nodiscard]] InstanceMask eroded(int r) const;

  /// Copy shifted by an integer offset, clipped at the frame borders.
  [[nodiscard]] InstanceMask translated(int dx, int dy) const;

  int class_id = 0;        // semantic class (0 = background / unknown)
  int instance_id = 0;     // unique per object instance in the scene

  [[nodiscard]] const img::Image<std::uint8_t>& raw() const noexcept {
    return bits_;
  }
  [[nodiscard]] img::Image<std::uint8_t>& raw() noexcept { return bits_; }

 private:
  img::Image<std::uint8_t> bits_;
};

/// A closed contour: ordered list of connected boundary pixels.
using Contour = std::vector<geom::Vec2>;

/// Extract the outer contours of all connected components in the mask
/// (Moore-neighbor tracing with Jacob's stopping criterion — the analogue
/// of OpenCV findContours with RETR_EXTERNAL).
std::vector<Contour> find_contours(const InstanceMask& mask);

/// Rasterize a closed polygon into a mask (even-odd scanline fill).
InstanceMask rasterize_polygon(const Contour& polygon, int width, int height);

/// Build an InstanceMask from an instance-id buffer, selecting `id` pixels.
InstanceMask mask_from_id_image(const img::IdImage& ids, std::uint16_t id);

}  // namespace edgeis::mask
