file(REMOVE_RECURSE
  "../bench/fig12_motion"
  "../bench/fig12_motion.pdb"
  "CMakeFiles/fig12_motion.dir/fig12_motion.cpp.o"
  "CMakeFiles/fig12_motion.dir/fig12_motion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_motion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
