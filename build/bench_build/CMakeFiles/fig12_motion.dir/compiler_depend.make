# Empty compiler generated dependencies file for fig12_motion.
# This may be replaced when dependencies are built.
