file(REMOVE_RECURSE
  "../bench/fig16_ablation"
  "../bench/fig16_ablation.pdb"
  "CMakeFiles/fig16_ablation.dir/fig16_ablation.cpp.o"
  "CMakeFiles/fig16_ablation.dir/fig16_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
