# Empty dependencies file for fig13_scene_complexity.
# This may be replaced when dependencies are built.
