
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_scene_complexity.cpp" "bench_build/CMakeFiles/fig13_scene_complexity.dir/fig13_scene_complexity.cpp.o" "gcc" "bench_build/CMakeFiles/fig13_scene_complexity.dir/fig13_scene_complexity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/edgeis_core.dir/DependInfo.cmake"
  "/root/repo/build/src/vo/CMakeFiles/edgeis_vo.dir/DependInfo.cmake"
  "/root/repo/build/src/transfer/CMakeFiles/edgeis_transfer.dir/DependInfo.cmake"
  "/root/repo/build/src/segnet/CMakeFiles/edgeis_segnet.dir/DependInfo.cmake"
  "/root/repo/build/src/encoding/CMakeFiles/edgeis_encoding.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/edgeis_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/edgeis_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/edgeis_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/scene/CMakeFiles/edgeis_scene.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/edgeis_features.dir/DependInfo.cmake"
  "/root/repo/build/src/mask/CMakeFiles/edgeis_mask.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/edgeis_image.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/edgeis_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
