file(REMOVE_RECURSE
  "../bench/fig13_scene_complexity"
  "../bench/fig13_scene_complexity.pdb"
  "CMakeFiles/fig13_scene_complexity.dir/fig13_scene_complexity.cpp.o"
  "CMakeFiles/fig13_scene_complexity.dir/fig13_scene_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_scene_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
