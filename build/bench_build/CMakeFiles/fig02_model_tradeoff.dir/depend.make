# Empty dependencies file for fig02_model_tradeoff.
# This may be replaced when dependencies are built.
