file(REMOVE_RECURSE
  "../bench/fig02_model_tradeoff"
  "../bench/fig02_model_tradeoff.pdb"
  "CMakeFiles/fig02_model_tradeoff.dir/fig02_model_tradeoff.cpp.o"
  "CMakeFiles/fig02_model_tradeoff.dir/fig02_model_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_model_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
