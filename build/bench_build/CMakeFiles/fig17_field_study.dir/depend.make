# Empty dependencies file for fig17_field_study.
# This may be replaced when dependencies are built.
