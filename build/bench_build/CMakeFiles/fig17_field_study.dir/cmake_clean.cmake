file(REMOVE_RECURSE
  "../bench/fig17_field_study"
  "../bench/fig17_field_study.pdb"
  "CMakeFiles/fig17_field_study.dir/fig17_field_study.cpp.o"
  "CMakeFiles/fig17_field_study.dir/fig17_field_study.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_field_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
