file(REMOVE_RECURSE
  "../bench/ablation_parameters"
  "../bench/ablation_parameters.pdb"
  "CMakeFiles/ablation_parameters.dir/ablation_parameters.cpp.o"
  "CMakeFiles/ablation_parameters.dir/ablation_parameters.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_parameters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
