# Empty compiler generated dependencies file for fig14_acceleration.
# This may be replaced when dependencies are built.
