file(REMOVE_RECURSE
  "../bench/fig14_acceleration"
  "../bench/fig14_acceleration.pdb"
  "CMakeFiles/fig14_acceleration.dir/fig14_acceleration.cpp.o"
  "CMakeFiles/fig14_acceleration.dir/fig14_acceleration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_acceleration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
