# Empty compiler generated dependencies file for fig10_network.
# This may be replaced when dependencies are built.
