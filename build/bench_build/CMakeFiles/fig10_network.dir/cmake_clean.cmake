file(REMOVE_RECURSE
  "../bench/fig10_network"
  "../bench/fig10_network.pdb"
  "CMakeFiles/fig10_network.dir/fig10_network.cpp.o"
  "CMakeFiles/fig10_network.dir/fig10_network.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
