file(REMOVE_RECURSE
  "../bench/fig15_resource"
  "../bench/fig15_resource.pdb"
  "CMakeFiles/fig15_resource.dir/fig15_resource.cpp.o"
  "CMakeFiles/fig15_resource.dir/fig15_resource.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
