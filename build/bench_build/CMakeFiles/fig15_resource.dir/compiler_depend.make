# Empty compiler generated dependencies file for fig15_resource.
# This may be replaced when dependencies are built.
