# Empty compiler generated dependencies file for fig09_overall_cdf.
# This may be replaced when dependencies are built.
