file(REMOVE_RECURSE
  "../bench/fig11_latency"
  "../bench/fig11_latency.pdb"
  "CMakeFiles/fig11_latency.dir/fig11_latency.cpp.o"
  "CMakeFiles/fig11_latency.dir/fig11_latency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
