# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_geometry[1]_include.cmake")
include("/root/repo/build/tests/test_geometry_sweeps[1]_include.cmake")
include("/root/repo/build/tests/test_image[1]_include.cmake")
include("/root/repo/build/tests/test_features[1]_include.cmake")
include("/root/repo/build/tests/test_mask[1]_include.cmake")
include("/root/repo/build/tests/test_scene[1]_include.cmake")
include("/root/repo/build/tests/test_vo[1]_include.cmake")
include("/root/repo/build/tests/test_transfer[1]_include.cmake")
include("/root/repo/build/tests/test_segnet[1]_include.cmake")
include("/root/repo/build/tests/test_encoding[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_eval[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
