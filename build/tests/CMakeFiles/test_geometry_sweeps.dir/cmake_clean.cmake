file(REMOVE_RECURSE
  "CMakeFiles/test_geometry_sweeps.dir/test_geometry_sweeps.cpp.o"
  "CMakeFiles/test_geometry_sweeps.dir/test_geometry_sweeps.cpp.o.d"
  "test_geometry_sweeps"
  "test_geometry_sweeps.pdb"
  "test_geometry_sweeps[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_geometry_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
