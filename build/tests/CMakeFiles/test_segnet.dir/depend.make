# Empty dependencies file for test_segnet.
# This may be replaced when dependencies are built.
