file(REMOVE_RECURSE
  "CMakeFiles/test_segnet.dir/test_segnet.cpp.o"
  "CMakeFiles/test_segnet.dir/test_segnet.cpp.o.d"
  "test_segnet"
  "test_segnet.pdb"
  "test_segnet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_segnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
