# Empty compiler generated dependencies file for test_vo.
# This may be replaced when dependencies are built.
