file(REMOVE_RECURSE
  "CMakeFiles/test_vo.dir/test_vo.cpp.o"
  "CMakeFiles/test_vo.dir/test_vo.cpp.o.d"
  "test_vo"
  "test_vo.pdb"
  "test_vo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
