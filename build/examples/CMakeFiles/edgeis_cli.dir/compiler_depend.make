# Empty compiler generated dependencies file for edgeis_cli.
# This may be replaced when dependencies are built.
