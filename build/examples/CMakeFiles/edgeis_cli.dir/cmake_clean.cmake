file(REMOVE_RECURSE
  "CMakeFiles/edgeis_cli.dir/edgeis_cli.cpp.o"
  "CMakeFiles/edgeis_cli.dir/edgeis_cli.cpp.o.d"
  "edgeis_cli"
  "edgeis_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
