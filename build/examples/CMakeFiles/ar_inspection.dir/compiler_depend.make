# Empty compiler generated dependencies file for ar_inspection.
# This may be replaced when dependencies are built.
