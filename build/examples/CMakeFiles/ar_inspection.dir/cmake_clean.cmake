file(REMOVE_RECURSE
  "CMakeFiles/ar_inspection.dir/ar_inspection.cpp.o"
  "CMakeFiles/ar_inspection.dir/ar_inspection.cpp.o.d"
  "ar_inspection"
  "ar_inspection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ar_inspection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
