file(REMOVE_RECURSE
  "CMakeFiles/dynamic_objects.dir/dynamic_objects.cpp.o"
  "CMakeFiles/dynamic_objects.dir/dynamic_objects.cpp.o.d"
  "dynamic_objects"
  "dynamic_objects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_objects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
