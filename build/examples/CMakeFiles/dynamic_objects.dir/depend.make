# Empty dependencies file for dynamic_objects.
# This may be replaced when dependencies are built.
