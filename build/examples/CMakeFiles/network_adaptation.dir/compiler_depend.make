# Empty compiler generated dependencies file for network_adaptation.
# This may be replaced when dependencies are built.
