file(REMOVE_RECURSE
  "CMakeFiles/network_adaptation.dir/network_adaptation.cpp.o"
  "CMakeFiles/network_adaptation.dir/network_adaptation.cpp.o.d"
  "network_adaptation"
  "network_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
