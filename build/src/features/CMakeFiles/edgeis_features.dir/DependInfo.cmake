
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/features/descriptor.cpp" "src/features/CMakeFiles/edgeis_features.dir/descriptor.cpp.o" "gcc" "src/features/CMakeFiles/edgeis_features.dir/descriptor.cpp.o.d"
  "/root/repo/src/features/detector.cpp" "src/features/CMakeFiles/edgeis_features.dir/detector.cpp.o" "gcc" "src/features/CMakeFiles/edgeis_features.dir/detector.cpp.o.d"
  "/root/repo/src/features/matcher.cpp" "src/features/CMakeFiles/edgeis_features.dir/matcher.cpp.o" "gcc" "src/features/CMakeFiles/edgeis_features.dir/matcher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/image/CMakeFiles/edgeis_image.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/edgeis_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
