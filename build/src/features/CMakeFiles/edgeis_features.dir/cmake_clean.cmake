file(REMOVE_RECURSE
  "CMakeFiles/edgeis_features.dir/descriptor.cpp.o"
  "CMakeFiles/edgeis_features.dir/descriptor.cpp.o.d"
  "CMakeFiles/edgeis_features.dir/detector.cpp.o"
  "CMakeFiles/edgeis_features.dir/detector.cpp.o.d"
  "CMakeFiles/edgeis_features.dir/matcher.cpp.o"
  "CMakeFiles/edgeis_features.dir/matcher.cpp.o.d"
  "libedgeis_features.a"
  "libedgeis_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
