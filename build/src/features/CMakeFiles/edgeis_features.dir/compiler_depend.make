# Empty compiler generated dependencies file for edgeis_features.
# This may be replaced when dependencies are built.
