file(REMOVE_RECURSE
  "libedgeis_features.a"
)
