file(REMOVE_RECURSE
  "libedgeis_encoding.a"
)
