file(REMOVE_RECURSE
  "CMakeFiles/edgeis_encoding.dir/tiles.cpp.o"
  "CMakeFiles/edgeis_encoding.dir/tiles.cpp.o.d"
  "libedgeis_encoding.a"
  "libedgeis_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
