# Empty dependencies file for edgeis_encoding.
# This may be replaced when dependencies are built.
