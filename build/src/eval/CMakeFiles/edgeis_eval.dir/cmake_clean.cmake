file(REMOVE_RECURSE
  "CMakeFiles/edgeis_eval.dir/metrics.cpp.o"
  "CMakeFiles/edgeis_eval.dir/metrics.cpp.o.d"
  "libedgeis_eval.a"
  "libedgeis_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
