# Empty compiler generated dependencies file for edgeis_eval.
# This may be replaced when dependencies are built.
