file(REMOVE_RECURSE
  "libedgeis_eval.a"
)
