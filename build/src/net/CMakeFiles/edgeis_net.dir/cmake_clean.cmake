file(REMOVE_RECURSE
  "CMakeFiles/edgeis_net.dir/link.cpp.o"
  "CMakeFiles/edgeis_net.dir/link.cpp.o.d"
  "CMakeFiles/edgeis_net.dir/protocol.cpp.o"
  "CMakeFiles/edgeis_net.dir/protocol.cpp.o.d"
  "libedgeis_net.a"
  "libedgeis_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
