# Empty dependencies file for edgeis_net.
# This may be replaced when dependencies are built.
