file(REMOVE_RECURSE
  "libedgeis_net.a"
)
