file(REMOVE_RECURSE
  "libedgeis_geometry.a"
)
