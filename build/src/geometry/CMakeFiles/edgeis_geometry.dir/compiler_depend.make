# Empty compiler generated dependencies file for edgeis_geometry.
# This may be replaced when dependencies are built.
