file(REMOVE_RECURSE
  "CMakeFiles/edgeis_geometry.dir/epipolar.cpp.o"
  "CMakeFiles/edgeis_geometry.dir/epipolar.cpp.o.d"
  "CMakeFiles/edgeis_geometry.dir/pnp.cpp.o"
  "CMakeFiles/edgeis_geometry.dir/pnp.cpp.o.d"
  "libedgeis_geometry.a"
  "libedgeis_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
