file(REMOVE_RECURSE
  "CMakeFiles/edgeis_vo.dir/initializer.cpp.o"
  "CMakeFiles/edgeis_vo.dir/initializer.cpp.o.d"
  "CMakeFiles/edgeis_vo.dir/map.cpp.o"
  "CMakeFiles/edgeis_vo.dir/map.cpp.o.d"
  "CMakeFiles/edgeis_vo.dir/tracker.cpp.o"
  "CMakeFiles/edgeis_vo.dir/tracker.cpp.o.d"
  "libedgeis_vo.a"
  "libedgeis_vo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_vo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
