file(REMOVE_RECURSE
  "libedgeis_vo.a"
)
