# Empty compiler generated dependencies file for edgeis_vo.
# This may be replaced when dependencies are built.
