
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vo/initializer.cpp" "src/vo/CMakeFiles/edgeis_vo.dir/initializer.cpp.o" "gcc" "src/vo/CMakeFiles/edgeis_vo.dir/initializer.cpp.o.d"
  "/root/repo/src/vo/map.cpp" "src/vo/CMakeFiles/edgeis_vo.dir/map.cpp.o" "gcc" "src/vo/CMakeFiles/edgeis_vo.dir/map.cpp.o.d"
  "/root/repo/src/vo/tracker.cpp" "src/vo/CMakeFiles/edgeis_vo.dir/tracker.cpp.o" "gcc" "src/vo/CMakeFiles/edgeis_vo.dir/tracker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/geometry/CMakeFiles/edgeis_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/edgeis_features.dir/DependInfo.cmake"
  "/root/repo/build/src/mask/CMakeFiles/edgeis_mask.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/edgeis_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
