# Empty compiler generated dependencies file for edgeis_mask.
# This may be replaced when dependencies are built.
