file(REMOVE_RECURSE
  "CMakeFiles/edgeis_mask.dir/mask.cpp.o"
  "CMakeFiles/edgeis_mask.dir/mask.cpp.o.d"
  "libedgeis_mask.a"
  "libedgeis_mask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_mask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
