file(REMOVE_RECURSE
  "libedgeis_mask.a"
)
