# Empty dependencies file for edgeis_scene.
# This may be replaced when dependencies are built.
