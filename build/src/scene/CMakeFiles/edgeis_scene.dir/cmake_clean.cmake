file(REMOVE_RECURSE
  "CMakeFiles/edgeis_scene.dir/mesh.cpp.o"
  "CMakeFiles/edgeis_scene.dir/mesh.cpp.o.d"
  "CMakeFiles/edgeis_scene.dir/presets.cpp.o"
  "CMakeFiles/edgeis_scene.dir/presets.cpp.o.d"
  "CMakeFiles/edgeis_scene.dir/scene.cpp.o"
  "CMakeFiles/edgeis_scene.dir/scene.cpp.o.d"
  "libedgeis_scene.a"
  "libedgeis_scene.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_scene.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
