file(REMOVE_RECURSE
  "libedgeis_scene.a"
)
