file(REMOVE_RECURSE
  "libedgeis_segnet.a"
)
