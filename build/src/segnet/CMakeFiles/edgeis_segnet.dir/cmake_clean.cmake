file(REMOVE_RECURSE
  "CMakeFiles/edgeis_segnet.dir/anchors.cpp.o"
  "CMakeFiles/edgeis_segnet.dir/anchors.cpp.o.d"
  "CMakeFiles/edgeis_segnet.dir/corrupt.cpp.o"
  "CMakeFiles/edgeis_segnet.dir/corrupt.cpp.o.d"
  "CMakeFiles/edgeis_segnet.dir/model.cpp.o"
  "CMakeFiles/edgeis_segnet.dir/model.cpp.o.d"
  "libedgeis_segnet.a"
  "libedgeis_segnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_segnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
