
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/segnet/anchors.cpp" "src/segnet/CMakeFiles/edgeis_segnet.dir/anchors.cpp.o" "gcc" "src/segnet/CMakeFiles/edgeis_segnet.dir/anchors.cpp.o.d"
  "/root/repo/src/segnet/corrupt.cpp" "src/segnet/CMakeFiles/edgeis_segnet.dir/corrupt.cpp.o" "gcc" "src/segnet/CMakeFiles/edgeis_segnet.dir/corrupt.cpp.o.d"
  "/root/repo/src/segnet/model.cpp" "src/segnet/CMakeFiles/edgeis_segnet.dir/model.cpp.o" "gcc" "src/segnet/CMakeFiles/edgeis_segnet.dir/model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mask/CMakeFiles/edgeis_mask.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/edgeis_image.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/edgeis_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
