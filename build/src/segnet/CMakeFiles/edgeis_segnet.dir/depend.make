# Empty dependencies file for edgeis_segnet.
# This may be replaced when dependencies are built.
