file(REMOVE_RECURSE
  "libedgeis_sim.a"
)
