# Empty compiler generated dependencies file for edgeis_sim.
# This may be replaced when dependencies are built.
