file(REMOVE_RECURSE
  "CMakeFiles/edgeis_sim.dir/device.cpp.o"
  "CMakeFiles/edgeis_sim.dir/device.cpp.o.d"
  "libedgeis_sim.a"
  "libedgeis_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
