# Empty compiler generated dependencies file for edgeis_transfer.
# This may be replaced when dependencies are built.
