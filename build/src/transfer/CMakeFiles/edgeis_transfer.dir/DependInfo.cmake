
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transfer/mask_transfer.cpp" "src/transfer/CMakeFiles/edgeis_transfer.dir/mask_transfer.cpp.o" "gcc" "src/transfer/CMakeFiles/edgeis_transfer.dir/mask_transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vo/CMakeFiles/edgeis_vo.dir/DependInfo.cmake"
  "/root/repo/build/src/mask/CMakeFiles/edgeis_mask.dir/DependInfo.cmake"
  "/root/repo/build/src/features/CMakeFiles/edgeis_features.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/edgeis_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/image/CMakeFiles/edgeis_image.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
