file(REMOVE_RECURSE
  "CMakeFiles/edgeis_transfer.dir/mask_transfer.cpp.o"
  "CMakeFiles/edgeis_transfer.dir/mask_transfer.cpp.o.d"
  "libedgeis_transfer.a"
  "libedgeis_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
