file(REMOVE_RECURSE
  "libedgeis_transfer.a"
)
