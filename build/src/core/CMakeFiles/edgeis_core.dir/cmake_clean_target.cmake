file(REMOVE_RECURSE
  "libedgeis_core.a"
)
