# Empty compiler generated dependencies file for edgeis_core.
# This may be replaced when dependencies are built.
