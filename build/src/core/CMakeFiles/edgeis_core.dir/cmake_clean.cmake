file(REMOVE_RECURSE
  "CMakeFiles/edgeis_core.dir/baselines.cpp.o"
  "CMakeFiles/edgeis_core.dir/baselines.cpp.o.d"
  "CMakeFiles/edgeis_core.dir/edge_server.cpp.o"
  "CMakeFiles/edgeis_core.dir/edge_server.cpp.o.d"
  "CMakeFiles/edgeis_core.dir/edgeis_pipeline.cpp.o"
  "CMakeFiles/edgeis_core.dir/edgeis_pipeline.cpp.o.d"
  "CMakeFiles/edgeis_core.dir/local_trackers.cpp.o"
  "CMakeFiles/edgeis_core.dir/local_trackers.cpp.o.d"
  "CMakeFiles/edgeis_core.dir/pipeline.cpp.o"
  "CMakeFiles/edgeis_core.dir/pipeline.cpp.o.d"
  "libedgeis_core.a"
  "libedgeis_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
