file(REMOVE_RECURSE
  "libedgeis_image.a"
)
