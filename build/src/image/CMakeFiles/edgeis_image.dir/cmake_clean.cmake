file(REMOVE_RECURSE
  "CMakeFiles/edgeis_image.dir/image.cpp.o"
  "CMakeFiles/edgeis_image.dir/image.cpp.o.d"
  "libedgeis_image.a"
  "libedgeis_image.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeis_image.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
