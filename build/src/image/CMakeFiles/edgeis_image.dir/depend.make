# Empty dependencies file for edgeis_image.
# This may be replaced when dependencies are built.
