#!/usr/bin/env python3
"""Diff micro-kernel benchmark timings against a committed baseline.

micro_kernels emits google-benchmark JSON (BENCH_micro_kernels.json by
default). Absolute timings vary across machines, so raw comparison would
be noise: instead the per-kernel ratio actual/expected is normalized by
the MEDIAN ratio over all kernels. A uniformly faster or slower machine
moves every ratio by the same factor and cancels out; a single kernel
regressing moves only its own normalized ratio and trips the check.

The baseline is a tripwire, not a lockfile. When an intentional change
moves a kernel's cost (or adds/removes a kernel), regenerate it in one
command and commit the result:

    ./build/bench/micro_kernels --benchmark_min_time=0.2 && \
        scripts/check_bench.py --update BENCH_micro_kernels.json

Usage:
    scripts/check_bench.py BENCH_micro_kernels.json
    scripts/check_bench.py --baseline bench/expected/micro_kernels_baseline.json actual.json
    scripts/check_bench.py --update BENCH_micro_kernels.json
"""

import argparse
import json
import statistics
import sys

DEFAULT_BASELINE = "bench/expected/micro_kernels_baseline.json"

# Normalized-ratio ceiling: a kernel fails when it is this many times
# slower than the baseline predicts after machine-speed normalization.
# Generous because CI runners are noisy shared VMs; a real regression
# from a dropped early-out or a reintroduced per-frame allocation is
# well past 2x on these kernels.
DEFAULT_TOLERANCE = 2.0
TOLERANCES = {
    # Sub-millisecond kernels jitter more on shared runners.
    "BM_Nms": 3.0,
    "BM_WindowedMatch": 3.0,
}


def load_times(path):
    """Map benchmark name -> real_time in ms from either format: raw
    google-benchmark JSON or the reduced committed baseline."""
    with open(path) as f:
        doc = json.load(f)
    if "kernels" in doc:
        return {k: v["real_time_ms"] for k, v in doc["kernels"].items()}
    times = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type", "iteration") != "iteration":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
        times[b["name"]] = b["real_time"] * scale
    return times


def update(baseline_path, actual_path):
    times = load_times(actual_path)
    if not times:
        raise SystemExit(f"no benchmark entries in {actual_path}")
    doc = {
        "_comment": (
            "Reduced micro_kernels baseline (real_time per kernel, ms). "
            "Compared by scripts/check_bench.py with median-normalized "
            "ratios, so the machine that generated it does not matter. "
            "Regenerate: ./build/bench/micro_kernels "
            "--benchmark_min_time=0.2 && scripts/check_bench.py --update "
            "BENCH_micro_kernels.json"
        ),
        "kernels": {
            name: {"real_time_ms": round(ms, 4)}
            for name, ms in sorted(times.items())
        },
    }
    with open(baseline_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {baseline_path} ({len(times)} kernels)")


def check(baseline_path, actual_path):
    expected = load_times(baseline_path)
    actual = load_times(actual_path)

    missing = sorted(set(expected) - set(actual))
    extra = sorted(set(actual) - set(expected))
    common = sorted(set(expected) & set(actual))
    failures = [f"kernel missing from run: {name}" for name in missing]
    for name in extra:
        # New kernels are fine to run but should enter the baseline.
        print(f"note: {name} not in baseline (run --update to add it)")
    if len(common) < 3:
        raise SystemExit(
            f"only {len(common)} kernels overlap the baseline - "
            "median normalization needs at least 3"
        )

    ratios = {n: actual[n] / expected[n] for n in common}
    scale = statistics.median(ratios.values())
    print(f"machine-speed scale (median ratio): {scale:.3f}")
    for name in common:
        norm = ratios[name] / scale
        tol = TOLERANCES.get(name, DEFAULT_TOLERANCE)
        status = "ok"
        if norm > tol:
            status = "FAIL"
            failures.append(
                f"{name}: {actual[name]:.4f} ms vs baseline "
                f"{expected[name]:.4f} ms (normalized {norm:.2f}x > {tol:.1f}x)"
            )
        elif norm < 1.0 / tol:
            # Faster is not a failure, but flag it: either an optimization
            # landed (regenerate the baseline) or the kernel's work got
            # optimized away and it no longer measures anything.
            status = "faster than baseline - consider --update"
        print(
            f"  {name}: {actual[name]:8.4f} ms  "
            f"baseline {expected[name]:8.4f} ms  "
            f"normalized {norm:5.2f}x  {status}"
        )

    if failures:
        print(f"\n{len(failures)} kernel check(s) failed:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        print(
            "\nIf the change is intentional, regenerate the baseline:\n"
            "  ./build/bench/micro_kernels --benchmark_min_time=0.2 && \\\n"
            f"      scripts/check_bench.py --update BENCH_micro_kernels.json",
            file=sys.stderr,
        )
        raise SystemExit(1)
    print(f"all {len(common)} kernels within tolerance")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("actual", help="google-benchmark JSON output to check")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from this run instead of checking",
    )
    args = ap.parse_args()
    if args.update:
        update(args.baseline, args.actual)
    else:
        check(args.baseline, args.actual)


if __name__ == "__main__":
    main()
