#!/usr/bin/env python3
"""Validate and summarize a Chrome trace exported by the edgeIS tracer.

The tracer (src/runtime/trace.hpp) promises a handful of structural
invariants; this script is the executable statement of them:

  1. Schema: the file is {"traceEvents": [...]}; every event has ph, pid,
     tid, ts (and name except for E events; dur for X; args.value for C).
  2. Balanced spans: on every (pid, tid) track, B/E events pair up like
     parentheses when replayed in emission order, every E closes the most
     recent open B, no span is left open, and each E timestamp >= its B
     timestamp (monotone within a span).
  3. Non-negative durations on X events.
  4. Frame containment: on the mobile track (pid 1, tid 1) the B/E stage
     spans nested inside each "frame" span have durations that sum to at
     most the frame span's duration (within a small epsilon). X events are
     exempt: they model work that legitimately overlaps frames (e.g. the
     pure-mobile on-device inference).

With --check, exit non-zero on the first violated invariant (CI mode).
Otherwise additionally print a per-track event census and a per-stage
duration breakdown like the Fig. 11 table.

Usage:
    scripts/trace_summary.py trace.json
    scripts/trace_summary.py --check trace.json
"""

import argparse
import collections
import json
import sys

EPS_US = 0.5  # span-sum slack: one export rounding step (0.001 us) per
              # stage would be enough; be generous and still catch bugs


def fail(msg):
    print(f"trace_summary: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents must be an array")
    return events


def check_schema(events):
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("B", "E", "X", "i", "C", "M"):
            fail(f"event {i}: unknown ph {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                fail(f"event {i} (ph={ph}): missing integer {key}")
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            fail(f"event {i} (ph={ph}): missing numeric ts")
        if ph != "E" and not isinstance(ev.get("name"), str):
            fail(f"event {i} (ph={ph}): missing name")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            fail(f"event {i} (ph=X): missing numeric dur")
        if ph == "X" and ev["dur"] < 0:
            fail(f"event {i} ({ev.get('name')}): negative dur {ev['dur']}")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or "value" not in args:
                fail(f"event {i} (ph=C {ev.get('name')}): missing args.value")
        if ph == "i" and ev.get("s") != "t":
            fail(f"event {i} (ph=i {ev.get('name')}): missing scope s=t")


def check_balance(events):
    """Replay B/E per track; return closed spans as (pid, tid, name, ts,
    dur, depth, parent_index_in_result)."""
    stacks = collections.defaultdict(list)  # (pid,tid) -> [open span]
    spans = []
    for i, ev in enumerate(events):
        ph = ev["ph"]
        if ph == "B":
            stacks[(ev["pid"], ev["tid"])].append(
                {"name": ev["name"], "ts": ev["ts"], "index": i})
        elif ph == "E":
            key = (ev["pid"], ev["tid"])
            if not stacks[key]:
                fail(f"event {i}: E with no open span on track {key}")
            b = stacks[key].pop()
            if ev["ts"] < b["ts"] - 1e-9:
                fail(f"event {i}: span {b['name']!r} ends at {ev['ts']} "
                     f"before it begins at {b['ts']}")
            spans.append({
                "pid": key[0], "tid": key[1], "name": b["name"],
                "ts": b["ts"], "dur": ev["ts"] - b["ts"],
                "depth": len(stacks[key]),
            })
    for key, stack in stacks.items():
        if stack:
            names = [s["name"] for s in stack]
            fail(f"track {key}: {len(stack)} unclosed span(s): {names}")
    return spans


def check_frame_containment(spans):
    """On the mobile track, stage spans inside each frame span must not
    outlast it in total."""
    mobile = [s for s in spans if (s["pid"], s["tid"]) == (1, 1)]
    frames = [s for s in mobile if s["name"] == "frame"]
    stages = [s for s in mobile if s["name"] != "frame" and s["depth"] > 0]
    # Stage spans close before their frame (emission order), so a simple
    # interval scan suffices: attribute each stage to the frame containing
    # its start.
    frames.sort(key=lambda s: s["ts"])
    for fr in frames:
        inside = [s for s in stages
                  if fr["ts"] - 1e-9 <= s["ts"]
                  and s["ts"] + s["dur"] <= fr["ts"] + fr["dur"] + 1e-6]
        total = sum(s["dur"] for s in inside
                    if fr["ts"] - 1e-9 <= s["ts"] < fr["ts"] + fr["dur"])
        if total > fr["dur"] + EPS_US:
            fail(f"frame at ts={fr['ts']}: stage spans sum to {total:.3f} "
                 f"us > frame duration {fr['dur']:.3f} us")
    return frames, stages


def summarize(events, spans, frames, stages):
    track_names = {}
    for ev in events:
        if ev["ph"] == "M" and ev.get("name") == "thread_name":
            track_names[(ev["pid"], ev["tid"])] = ev["args"]["name"]

    census = collections.Counter(
        (ev["pid"], ev["tid"], ev["ph"]) for ev in events)
    print(f"{len(events)} events, {len(spans)} B/E spans, "
          f"{len(frames)} frames")
    print("\nper-track census (B/E X i C):")
    tracks = sorted({(ev["pid"], ev["tid"]) for ev in events})
    for key in tracks:
        label = track_names.get(key, f"pid{key[0]}/tid{key[1]}")
        counts = " ".join(
            f"{ph}={census.get((key[0], key[1], ph), 0)}"
            for ph in ("B", "E", "X", "i", "C"))
        print(f"  {label:<28} {counts}")

    if frames:
        frame_total = sum(f["dur"] for f in frames)
        print(f"\nmobile stage breakdown over {len(frames)} frames "
              f"(mean ms/frame):")
        by_name = collections.defaultdict(float)
        for s in stages:
            by_name[s["name"]] += s["dur"]
        stage_sum = 0.0
        for name in sorted(by_name, key=by_name.get, reverse=True):
            per_frame_ms = by_name[name] / len(frames) / 1000.0
            stage_sum += by_name[name]
            print(f"  {name:<12} {per_frame_ms:8.3f}")
        print(f"  {'(stages)':<12} {stage_sum / len(frames) / 1000.0:8.3f}")
        print(f"  {'frame':<12} {frame_total / len(frames) / 1000.0:8.3f}")

    x_by_track = collections.defaultdict(float)
    for ev in events:
        if ev["ph"] == "X":
            x_by_track[(ev["pid"], ev["tid"], ev["name"])] += ev["dur"]
    if x_by_track:
        print("\nX-event busy time (total ms):")
        for (pid, tid, name), dur in sorted(x_by_track.items()):
            label = track_names.get((pid, tid), f"pid{pid}/tid{tid}")
            print(f"  {label:<20} {name:<14} {dur / 1000.0:10.3f}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="Chrome trace-event JSON file")
    ap.add_argument("--check", action="store_true",
                    help="validate only; no summary output")
    args = ap.parse_args()

    events = load(args.trace)
    if not events:
        fail("empty trace")
    check_schema(events)
    spans = check_balance(events)
    frames, stages = check_frame_containment(spans)
    if args.check:
        print(f"trace_summary: OK: {len(events)} events, "
              f"{len(spans)} spans balanced, {len(frames)} frames")
        return
    summarize(events, spans, frames, stages)


if __name__ == "__main__":
    main()
