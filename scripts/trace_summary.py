#!/usr/bin/env python3
"""Validate and summarize a Chrome trace exported by the edgeIS tracer.

The tracer (src/runtime/trace.hpp) promises a handful of structural
invariants; this script is the executable statement of them:

  1. Schema: the file is {"traceEvents": [...]}; every event has ph, pid,
     tid, ts (and name except for E events; dur for X; args.value for C).
  2. Balanced spans: on every (pid, tid) track, B/E events pair up like
     parentheses when replayed in emission order, every E closes the most
     recent open B, no span is left open, and each E timestamp >= its B
     timestamp (monotone within a span).
  3. Non-negative durations on X events.
  4. Frame containment: on the mobile track (pid 1, tid 1) the B/E stage
     spans nested inside each "frame" span have durations that sum to at
     most the frame span's duration (within a small epsilon). X events are
     exempt: they model work that legitimately overlaps frames (e.g. the
     pure-mobile on-device inference).
  5. Critical-path closure: for every answered edge request, the stage
     decomposition recomputed here (mirroring runtime/critpath.cpp:
     uplink wait/transit, GPU wait, compute, chunk-stream tail, downlink,
     pickup) sums to the ledger's send->response span within 1%, and for
     first-attempt requests that span agrees with the rtt_ms the ledger
     itself measured at runtime within 1% — two independent clocks over
     the same interval.
  6. Canvas-delta consistency: edge `canvas_hit` instants carry a sane
     tile economy, edge `canvas_resync` instants justify the refusal
     (cold canvas or epoch mismatch), and every mobile-side ledger
     `canvas_resync` is preceded by a matching edge refusal.

With --check, exit non-zero on the first violated invariant (CI mode).
Otherwise additionally print a per-track event census, a per-stage
duration breakdown like the Fig. 11 table, and the mean critical-path
waterfall.

With --flight-recorder, the positional argument is a postmortem dump (or
a directory of them) written by runtime/flight_recorder.hpp instead of a
full trace: each dump must be valid JSON with complete flightRecorder
metadata, a known trigger name, and a traceEvents array consistent with
the declared ring occupancy (B/E balance is NOT required — a ring buffer
legitimately evicts a span's B while keeping its E).

Usage:
    scripts/trace_summary.py trace.json
    scripts/trace_summary.py --check trace.json
    scripts/trace_summary.py --check --flight-recorder flight/clients-64
"""

import argparse
import collections
import json
import os
import sys

EPS_US = 0.5  # span-sum slack: one export rounding step (0.001 us) per
              # stage would be enough; be generous and still catch bugs

# Anomaly triggers the flight recorder can fire (runtime/flight_recorder).
KNOWN_TRIGGERS = {
    "ledger-abandon", "degraded-entry", "reject-storm", "rto-collapse",
}


def fail(msg):
    print(f"trace_summary: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot parse {path}: {e}")
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail("traceEvents must be an array")
    return events


def check_schema(events):
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event {i} is not an object")
        ph = ev.get("ph")
        if ph not in ("B", "E", "X", "i", "C", "M"):
            fail(f"event {i}: unknown ph {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                fail(f"event {i} (ph={ph}): missing integer {key}")
        if ph != "M" and not isinstance(ev.get("ts"), (int, float)):
            fail(f"event {i} (ph={ph}): missing numeric ts")
        if ph != "E" and not isinstance(ev.get("name"), str):
            fail(f"event {i} (ph={ph}): missing name")
        if ph == "X" and not isinstance(ev.get("dur"), (int, float)):
            fail(f"event {i} (ph=X): missing numeric dur")
        if ph == "X" and ev["dur"] < 0:
            fail(f"event {i} ({ev.get('name')}): negative dur {ev['dur']}")
        if ph == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or "value" not in args:
                fail(f"event {i} (ph=C {ev.get('name')}): missing args.value")
        if ph == "i" and ev.get("s") != "t":
            fail(f"event {i} (ph=i {ev.get('name')}): missing scope s=t")


def check_balance(events):
    """Replay B/E per track; return closed spans as (pid, tid, name, ts,
    dur, depth, parent_index_in_result)."""
    stacks = collections.defaultdict(list)  # (pid,tid) -> [open span]
    spans = []
    for i, ev in enumerate(events):
        ph = ev["ph"]
        if ph == "B":
            stacks[(ev["pid"], ev["tid"])].append(
                {"name": ev["name"], "ts": ev["ts"], "index": i})
        elif ph == "E":
            key = (ev["pid"], ev["tid"])
            if not stacks[key]:
                fail(f"event {i}: E with no open span on track {key}")
            b = stacks[key].pop()
            if ev["ts"] < b["ts"] - 1e-9:
                fail(f"event {i}: span {b['name']!r} ends at {ev['ts']} "
                     f"before it begins at {b['ts']}")
            spans.append({
                "pid": key[0], "tid": key[1], "name": b["name"],
                "ts": b["ts"], "dur": ev["ts"] - b["ts"],
                "depth": len(stacks[key]),
            })
    for key, stack in stacks.items():
        if stack:
            names = [s["name"] for s in stack]
            fail(f"track {key}: {len(stack)} unclosed span(s): {names}")
    return spans


def check_frame_containment(spans):
    """On the mobile track, stage spans inside each frame span must not
    outlast it in total."""
    mobile = [s for s in spans if (s["pid"], s["tid"]) == (1, 1)]
    frames = [s for s in mobile if s["name"] == "frame"]
    stages = [s for s in mobile if s["name"] != "frame" and s["depth"] > 0]
    # Stage spans close before their frame (emission order), so a simple
    # interval scan suffices: attribute each stage to the frame containing
    # its start.
    frames.sort(key=lambda s: s["ts"])
    for fr in frames:
        inside = [s for s in stages
                  if fr["ts"] - 1e-9 <= s["ts"]
                  and s["ts"] + s["dur"] <= fr["ts"] + fr["dur"] + 1e-6]
        total = sum(s["dur"] for s in inside
                    if fr["ts"] - 1e-9 <= s["ts"] < fr["ts"] + fr["dur"])
        if total > fr["dur"] + EPS_US:
            fail(f"frame at ts={fr['ts']}: stage spans sum to {total:.3f} "
                 f"us > frame duration {fr['dur']:.3f} us")
    return frames, stages


def arg_num(ev, key, fallback=0.0):
    args = ev.get("args")
    v = args.get(key) if isinstance(args, dict) else None
    return v if isinstance(v, (int, float)) else fallback


def check_critpath(events):
    """Recompute the per-request critical-path decomposition of
    runtime/critpath.cpp from the exported JSON and hard-check its two
    closure properties: stages telescope to the send->response span
    (within 1%), and for attempt-0 requests that span matches the
    rtt_ms arg the request ledger measured independently at runtime
    (within 1%). Timestamps here are export microseconds; rtt_ms stays
    in ms. Returns the per-request stage dicts for summarize()."""
    first_send = {}   # (session, request) -> ts
    responses = {}    # (session, request) -> event (first wins)
    uplinks = collections.defaultdict(list)
    downlinks = collections.defaultdict(list)
    infers = collections.defaultdict(list)       # (session arg, frame)
    chunk_ready = collections.defaultdict(list)  # (session arg, frame)
    for ev in events:
        pid, ph = ev["pid"], ev["ph"]
        if pid == 2:  # shared edge track; session travels as an arg
            key = (int(arg_num(ev, "session", -1)), int(arg_num(ev, "frame", -1)))
            if ph == "X" and ev["name"] == "infer":
                infers[key].append(ev)
            elif ph == "i" and ev["name"] == "chunk_ready":
                chunk_ready[key].append(ev["ts"])
            continue
        mod = pid % 4
        if mod == 1 and ev["tid"] == 2 and ph == "i":
            key = ((pid - 1) // 4, int(arg_num(ev, "request", -1)))
            if ev["name"] == "send" and arg_num(ev, "ping") == 0:
                first_send.setdefault(key, ev["ts"])
            elif ev["name"] == "response":
                responses.setdefault(key, ev)
        elif mod == 3 and ph == "X":
            key = ((pid - 3) // 4, int(arg_num(ev, "request", -1)))
            fault = (ev.get("args") or {}).get("fault")
            usable = fault not in ("dropped", "duplicate-copy")
            if ev["tid"] == 1 and ev["name"] == "uplink":
                uplinks[key].append((ev, usable))
            elif ev["tid"] == 2 and ev["name"] == "downlink":
                downlinks[key].append((ev, usable))

    def edge_lookup(table, session, request):
        return table.get((session, request)) or table.get((-1, request))

    requests = []
    for key, resp in sorted(responses.items()):
        if key not in first_send:
            continue
        t0, t1 = first_send[key], resp["ts"]
        if t1 < t0:
            fail(f"request {key}: response at {t1} before send at {t0}")
        span_ms = (t1 - t0) / 1000.0
        rtt_ms = arg_num(resp, "rtt_ms")
        if arg_num(resp, "attempt") == 0 and rtt_ms > 0:
            if abs(span_ms - rtt_ms) > 0.01 * rtt_ms + 0.01:
                fail(f"request {key}: trace span {span_ms:.3f} ms disagrees "
                     f"with ledger rtt_ms {rtt_ms:.3f} by >1%")

        up = None
        for ev, usable in uplinks.get(key, ()):
            end = ev["ts"] + ev["dur"]
            if usable and ev["ts"] >= t0 - 1e-6 and end <= t1 + 1e-6:
                if up is None or end > up["ts"] + up["dur"]:
                    up = ev
        arrive = up["ts"] + up["dur"] if up else t0
        cands = edge_lookup(infers, *key) or []
        inside = [x for x in cands
                  if x["ts"] >= arrive - 1e-6
                  and x["ts"] + x["dur"] <= t1 + 1e-6]
        inf = min(inside, key=lambda x: x["ts"]) if inside else None
        if inf is None:
            done = [x for x in cands if x["ts"] + x["dur"] <= t1 + 1e-6]
            inf = max(done, key=lambda x: x["ts"] + x["dur"]) if done else None
        lo = inf["ts"] if inf else arrive
        chunks = [ts for ts in (edge_lookup(chunk_ready, *key) or ())
                  if lo - 1e-6 <= ts <= t1 + 1e-6]
        down = None
        for ev, usable in downlinks.get(key, ()):
            end = ev["ts"] + ev["dur"]
            if usable and end <= t1 + 1e-6:
                if down is None or end > down["ts"] + down["dur"]:
                    down = ev

        prev = t0
        marks = []
        for t in (up["ts"] if up else t0,
                  up["ts"] + up["dur"] if up else t0,
                  inf["ts"] if inf else t0,
                  min(chunks) if chunks else t0,
                  max(chunks) if chunks else t0,
                  down["ts"] if down else t0,
                  down["ts"] + down["dur"] if down else t0):
            prev = min(max(prev, t), t1)
            marks.append(prev)
        m1, m2, m3, m4, m5, m6, m7 = marks
        queue = min(arg_num(up, "queue_wait_ms") * 1000.0 if up else 0.0,
                    m1 - t0)
        stages = {
            "retry": m1 - t0 - queue, "upQ": queue, "upTx": m2 - m1,
            "gpuWait": m3 - m2, "compute": m4 - m3, "stream": m5 - m4,
            "dnQ": m6 - m5, "dnTx": m7 - m6, "pickup": t1 - m7,
        }
        total = sum(stages.values())
        if abs(total - (t1 - t0)) > 0.01 * max(t1 - t0, 1.0):
            fail(f"request {key}: stages sum to {total:.3f} us but span is "
                 f"{t1 - t0:.3f} us (>1% apart)")
        requests.append(stages)
    return requests


def check_canvas(events):
    """Canvas-delta uplink instants (core/edge_server.cpp): every edge
    `canvas_hit` must carry a sane tile economy (sent+reused > 0, quality
    in [0,1]); every edge `canvas_resync` must justify the refusal (cold
    canvas, or base_epoch != canvas_epoch); and every mobile-side ledger
    `canvas_resync` must be preceded by an edge refusal for the same
    (session, frame) — the mobile never invents a resync the edge did not
    send. Returns (hits, edge_resyncs, ledger_resyncs) for summarize()."""
    hits = 0
    edge_resyncs = collections.defaultdict(list)  # (session, frame) -> ts
    ledger_resyncs = []
    for i, ev in enumerate(events):
        if ev["ph"] != "i":
            continue
        pid, name = ev["pid"], ev["name"]
        if pid == 2 and name == "canvas_hit":
            sent = arg_num(ev, "sent", -1)
            reused = arg_num(ev, "reused", -1)
            quality = arg_num(ev, "quality", -1)
            if sent < 0 or reused < 0 or sent + reused <= 0:
                fail(f"event {i}: canvas_hit with empty tile economy "
                     f"(sent={sent}, reused={reused})")
            if not 0.0 <= quality <= 1.0 + 1e-9:
                fail(f"event {i}: canvas_hit quality {quality} outside "
                     f"[0, 1]")
            hits += 1
        elif pid == 2 and name == "canvas_resync":
            base = arg_num(ev, "base_epoch", -1)
            canvas = arg_num(ev, "canvas_epoch", -1)
            cold = (ev.get("args") or {}).get("cold")
            if not cold and base == canvas:
                fail(f"event {i}: canvas_resync on a warm canvas with "
                     f"matching epochs (base={base})")
            key = (int(arg_num(ev, "session", -1)),
                   int(arg_num(ev, "frame", -1)))
            edge_resyncs[key].append(ev["ts"])
        elif pid % 4 == 3 and name == "canvas_resync":
            ledger_resyncs.append(
                ((pid - 3) // 4, int(arg_num(ev, "request", -1)),
                 ev["ts"], i))
    for session, request, ts, i in ledger_resyncs:
        cands = (edge_resyncs.get((session, request)) or
                 edge_resyncs.get((-1, request)) or [])
        if not any(t <= ts + 1e-6 for t in cands):
            fail(f"event {i}: ledger canvas_resync for request "
                 f"({session}, {request}) has no earlier edge refusal")
    n_edge = sum(len(v) for v in edge_resyncs.values())
    if len(ledger_resyncs) > n_edge:
        fail(f"{len(ledger_resyncs)} ledger canvas_resync instants but "
             f"only {n_edge} edge refusals")
    return hits, n_edge, len(ledger_resyncs)


def summarize_critpath(requests):
    if not requests:
        return
    names = ["retry", "upQ", "upTx", "gpuWait", "compute", "stream",
             "dnQ", "dnTx", "pickup"]
    print(f"\ncritical-path waterfall over {len(requests)} answered "
          f"requests (mean ms):")
    total = 0.0
    for name in names:
        mean_ms = sum(r[name] for r in requests) / len(requests) / 1000.0
        total += mean_ms
        print(f"  {name:<12} {mean_ms:8.3f}")
    print(f"  {'(span)':<12} {total:8.3f}")


def lint_flight_dump(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"flight dump {path}: cannot parse: {e}")
    meta = doc.get("flightRecorder")
    if not isinstance(meta, dict):
        fail(f"flight dump {path}: missing flightRecorder metadata object")
    for key, kind in (("session", int), ("trigger", str),
                      ("ts_ms", (int, float)), ("events", int),
                      ("capacity", int)):
        if not isinstance(meta.get(key), kind):
            fail(f"flight dump {path}: metadata field {key!r} missing or "
                 f"mistyped")
    if meta["trigger"] not in KNOWN_TRIGGERS:
        fail(f"flight dump {path}: unknown trigger {meta['trigger']!r}")
    if meta["events"] > meta["capacity"]:
        fail(f"flight dump {path}: {meta['events']} events exceed ring "
             f"capacity {meta['capacity']}")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or len(events) != meta["events"]:
        fail(f"flight dump {path}: traceEvents length "
             f"{len(events) if isinstance(events, list) else '?'} != "
             f"declared events {meta['events']}")
    # Schema only: a ring buffer evicts oldest-first, so a span's B may be
    # gone while its E survives — balance is not an invariant of a dump.
    check_schema(events)
    return meta


def lint_flight(path, check_only):
    if os.path.isdir(path):
        files = sorted(os.path.join(path, name)
                       for name in os.listdir(path)
                       if name.endswith(".json"))
        if not files:
            fail(f"flight dir {path}: no .json dumps")
    else:
        files = [path]
    by_trigger = collections.Counter()
    for f in files:
        by_trigger[lint_flight_dump(f)["trigger"]] += 1
    print(f"trace_summary: OK: {len(files)} flight dump(s) valid")
    if not check_only:
        for trigger, n in sorted(by_trigger.items()):
            print(f"  {trigger:<16} {n}")


def summarize(events, spans, frames, stages):
    track_names = {}
    for ev in events:
        if ev["ph"] == "M" and ev.get("name") == "thread_name":
            track_names[(ev["pid"], ev["tid"])] = ev["args"]["name"]

    census = collections.Counter(
        (ev["pid"], ev["tid"], ev["ph"]) for ev in events)
    print(f"{len(events)} events, {len(spans)} B/E spans, "
          f"{len(frames)} frames")
    print("\nper-track census (B/E X i C):")
    tracks = sorted({(ev["pid"], ev["tid"]) for ev in events})
    for key in tracks:
        label = track_names.get(key, f"pid{key[0]}/tid{key[1]}")
        counts = " ".join(
            f"{ph}={census.get((key[0], key[1], ph), 0)}"
            for ph in ("B", "E", "X", "i", "C"))
        print(f"  {label:<28} {counts}")

    if frames:
        frame_total = sum(f["dur"] for f in frames)
        print(f"\nmobile stage breakdown over {len(frames)} frames "
              f"(mean ms/frame):")
        by_name = collections.defaultdict(float)
        for s in stages:
            by_name[s["name"]] += s["dur"]
        stage_sum = 0.0
        for name in sorted(by_name, key=by_name.get, reverse=True):
            per_frame_ms = by_name[name] / len(frames) / 1000.0
            stage_sum += by_name[name]
            print(f"  {name:<12} {per_frame_ms:8.3f}")
        print(f"  {'(stages)':<12} {stage_sum / len(frames) / 1000.0:8.3f}")
        print(f"  {'frame':<12} {frame_total / len(frames) / 1000.0:8.3f}")

    x_by_track = collections.defaultdict(float)
    for ev in events:
        if ev["ph"] == "X":
            x_by_track[(ev["pid"], ev["tid"], ev["name"])] += ev["dur"]
    if x_by_track:
        print("\nX-event busy time (total ms):")
        for (pid, tid, name), dur in sorted(x_by_track.items()):
            label = track_names.get((pid, tid), f"pid{pid}/tid{tid}")
            print(f"  {label:<20} {name:<14} {dur / 1000.0:10.3f}")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace",
                    help="Chrome trace-event JSON file, or with "
                         "--flight-recorder a postmortem dump file/dir")
    ap.add_argument("--check", action="store_true",
                    help="validate only; no summary output")
    ap.add_argument("--flight-recorder", action="store_true",
                    help="lint flight-recorder dump(s) instead of a trace")
    args = ap.parse_args()

    if args.flight_recorder:
        lint_flight(args.trace, args.check)
        return

    events = load(args.trace)
    if not events:
        fail("empty trace")
    check_schema(events)
    spans = check_balance(events)
    frames, stages = check_frame_containment(spans)
    requests = check_critpath(events)
    hits, edge_rs, ledger_rs = check_canvas(events)
    if args.check:
        print(f"trace_summary: OK: {len(events)} events, "
              f"{len(spans)} spans balanced, {len(frames)} frames, "
              f"{len(requests)} critical paths closed, "
              f"{hits + edge_rs} canvas instants consistent")
        return
    summarize(events, spans, frames, stages)
    if hits or edge_rs:
        print(f"\ncanvas-delta uplink: {hits} reconstructions, "
              f"{edge_rs} edge refusals, {ledger_rs} acknowledged resyncs")
    summarize_critpath(requests)


if __name__ == "__main__":
    main()
