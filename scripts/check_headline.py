#!/usr/bin/env python3
"""Diff a benchmark's HEADLINE lines against checked-in expectations.

Benchmarks print one machine-readable line per (scenario, system) row:

    HEADLINE scenario=clean system=edgeIS iou=0.6353 timeouts=0 ...

The simulation is deterministic for a fixed seed, but headline numbers
still drift when intentional changes land (model tweaks, link profiles,
scenario edits). The nightly job is a tripwire, not a lockfile: numeric
fields match within a tolerance, and the failure message shows exactly
which field of which row moved so the expectation file can be
regenerated deliberately (run the bench, replace the file).

Usage:
    bench/fig17b_fault_sweep | scripts/check_headline.py bench/expected/fig17b_headline.txt
    scripts/check_headline.py expected.txt actual.txt
"""

import sys

# Per-field tolerances. Counters compare within max(abs, rel * expected)
# so small counts must match near-exactly while large ones may drift a
# little; unlisted fields must match exactly (they are labels).
TOLERANCES = {
    "iou": (0.02, 0.10),
    "timeouts": (1, 0.25),
    "rtx": (1, 0.25),
    "spurious": (0, 0.0),
    "failed": (1, 0.0),
    "degraded_ms": (150, 0.25),
    "stale_p95": (150, 0.25),
    "tx_bytes": (4096, 0.15),
    # Streamed-response accounting (full-duplex transmission).
    "chunks": (4, 0.15),
    "partial_applies": (4, 0.25),
    "resend_req": (1, 0.25),
    "dup_chunks": (1, 0.25),
    # Fleet scaling (bench/fleet_scaling): pooled tail latency, shared-GPU
    # admission/batching accounting.
    "p50_ms": (15, 0.20),
    "p99_ms": (50, 0.25),
    "stale_rate": (0.05, 0.50),
    "rejects": (8, 0.40),
    "batches": (10, 0.30),
    "mean_batch": (0.5, 0.30),
    "degraded": (2, 0.50),
    # Critical-path waterfall columns (runtime/critpath.hpp): mean ms per
    # answered request per stage. The link stages are per-client and
    # tight; the contended stages (gpu_wait, compute-in-batch, stream
    # tail) move with scheduling order, so they get the loose band.
    "up_ms": (2, 0.25),
    "gpu_wait_ms": (25, 0.35),
    "gpu_ms": (40, 0.25),
    "stream_ms": (15, 0.35),
    "down_ms": (2, 0.25),
    "pickup_ms": (10, 0.40),
    "rtt_ms": (60, 0.25),
    "cp_requests": (8, 0.30),
    # Pooled staleness-SLO violations and the sketch-backed metrics
    # registry footprint (scales with client count, not samples).
    "slo_viol": (4, 0.50),
    "metrics_kb": (8, 0.30),
    # Canvas-delta uplink (bench/fig10_network delta rows, fig17b
    # edgeIS-delta rows, fleet_scaling up_kb): bytes on the wire and the
    # canvas economy. `reduction` is the fig10 acceptance number —
    # delta's byte cut vs full-CFRS — and is held to a tight band so a
    # regression below the 30% floor trips the nightly job.
    "up_kb": (16, 0.15),
    "msgs": (2, 0.15),
    "deltas": (3, 0.25),
    "fulls": (2, 0.40),
    "tiles_sent": (250, 0.25),
    "tiles_reused": (400, 0.25),
    "hit_rate": (0.08, 0.20),
    "resyncs": (2, 0.60),
    "reduction": (0.06, 0.12),
}


def parse(stream):
    rows = {}
    for line in stream:
        parts = line.split()
        if not parts or parts[0] != "HEADLINE":
            continue
        fields = dict(p.split("=", 1) for p in parts[1:] if "=" in p)
        key = (fields.pop("scenario", "?"), fields.pop("system", "?"))
        if key in rows:
            raise SystemExit(f"duplicate headline row {key}")
        rows[key] = fields
    return rows


def close_enough(field, expected, actual):
    tol = TOLERANCES.get(field)
    if tol is None:
        return expected == actual
    try:
        e, a = float(expected), float(actual)
    except ValueError:
        return expected == actual
    abs_tol, rel_tol = tol
    return abs(a - e) <= max(abs_tol, rel_tol * abs(e))


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    with open(argv[1]) as f:
        expected = parse(f)
    if len(argv) == 3:
        with open(argv[2]) as f:
            actual = parse(f)
    else:
        actual = parse(sys.stdin)

    failures = []
    for key, efields in expected.items():
        arow = actual.get(key)
        if arow is None:
            failures.append(f"{key[0]}/{key[1]}: row missing from output")
            continue
        for field, evalue in efields.items():
            avalue = arow.get(field)
            if avalue is None:
                failures.append(f"{key[0]}/{key[1]}: field {field} missing")
            elif not close_enough(field, evalue, avalue):
                failures.append(
                    f"{key[0]}/{key[1]}: {field} expected {evalue}, got {avalue}"
                )
    for key in actual:
        if key not in expected:
            failures.append(
                f"{key[0]}/{key[1]}: new row not in expectations "
                "(regenerate the expectation file)"
            )

    if failures:
        print(f"HEADLINE check FAILED ({len(failures)} mismatches):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"HEADLINE check OK ({len(expected)} rows within tolerance)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
